package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces PR 1's byte-identical-reports guarantee: the
// experiment pipeline must produce the same bytes at every -j worker
// count and on every run. Three sources of nondeterminism are flagged:
//
//  1. Map iteration feeding ordered output. Iterating a map while
//     appending to a slice (without sorting afterwards in the same
//     function), writing to a printer/builder, accumulating floats
//     (float addition is not associative), or overwriting a variable
//     declared outside the loop is order-dependent and therefore
//     run-dependent.
//  2. Wall-clock reads (time.Now, time.Since) outside the allowlisted
//     timing code in internal/runner and internal/kernelbench.
//  3. The global math/rand source. All simulator randomness must come
//     from the seeded splitmix streams in internal/trace and
//     internal/runner so runs are reproducible from their seed.
//
// Genuinely order-independent sites carry a
// `//ppflint:allow determinism <why>` annotation.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags map-iteration order, wall-clock reads, and global math/rand " +
		"in paths that feed experiment reports",
	Run: runDeterminism,
}

// timingAllowlist lists package path segments whose wall-clock reads
// are legitimate: worker-pool scheduling/ETA and benchmark timing.
var timingAllowlist = []string{"internal/runner", "internal/kernelbench"}

func runDeterminism(s *Suite, report func(Diagnostic)) {
	for _, p := range s.Packages {
		timingOK := false
		for _, seg := range timingAllowlist {
			if p.PathHas(seg) {
				timingOK = true
			}
		}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					report(Diagnostic{Pos: imp.Pos(), Message: fmt.Sprintf(
						"import of %s: simulator randomness must come from seeded "+
							"splitmix streams (internal/trace, internal/runner), not the global source", path)})
				}
			}
		}
		for _, fd := range funcDecls(p) {
			checkDeterminismFunc(p, fd, timingOK, report)
		}
	}
}

func checkDeterminismFunc(p *Package, fd *ast.FuncDecl, timingOK bool, report func(Diagnostic)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !timingOK && (pkgCall(p.Info, n, "time", "Now") || pkgCall(p.Info, n, "time", "Since")) {
				report(Diagnostic{Pos: n.Pos(), Message: "wall-clock read in a result path: " +
					"reports must be byte-identical across runs; move timing into " +
					"internal/runner or internal/kernelbench, or annotate with //ppflint:allow determinism"})
			}
		case *ast.RangeStmt:
			if rangedMap(p.Info, n) {
				checkMapRange(p, fd, n, report)
			}
		}
		return true
	})
}

// rangedMap reports whether the range statement iterates a map.
func rangedMap(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

// checkMapRange flags order-dependent operations inside a map-range body.
func checkMapRange(p *Package, fd *ast.FuncDecl, rng *ast.RangeStmt, report func(Diagnostic)) {
	keyObj := rangeVarObj(p.Info, rng.Key)
	valObj := rangeVarObj(p.Info, rng.Value)
	mentionsLoopVar := func(n ast.Node) bool {
		return mentionsObject(p.Info, n, keyObj) || mentionsObject(p.Info, n, valObj)
	}
	mapDesc := types.ExprString(rng.X)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(p.Info, n, "append") {
				// Appending to a slice that outlives the loop bakes the
				// random iteration order into its element order; a
				// loop-local slice cannot leak it.
				if id, ok := n.Args[0].(*ast.Ident); ok && !declaredOutside(p.Info, id, rng) {
					return true
				}
				if !sortedAfter(p, fd, rng) {
					report(Diagnostic{Pos: n.Pos(), Message: fmt.Sprintf(
						"append inside iteration over map %s with no later sort in this "+
							"function: element order follows the randomized map order", mapDesc)})
				}
				return true
			}
			if name, bad := orderedSink(n); bad {
				report(Diagnostic{Pos: n.Pos(), Message: fmt.Sprintf(
					"%s inside iteration over map %s emits elements in randomized map order; "+
						"sort the keys first", name, mapDesc)})
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(p, rng, n, mentionsLoopVar, mapDesc, report)
		}
		return true
	})
}

// orderedSink reports calls that emit data in call order: printers,
// writers, and stream encoders.
func orderedSink(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch {
	case strings.HasPrefix(name, "Fprint"), strings.HasPrefix(name, "Print"),
		strings.HasPrefix(name, "Write"), name == "Encode":
		return name, true
	}
	return "", false
}

// checkMapRangeAssign flags assignments that make the loop's outcome
// depend on iteration order: overwriting an outer variable with a value
// derived from the loop variables (arbitrary pick), unkeyed scatter
// into an outer slice, and float accumulation.
func checkMapRangeAssign(p *Package, rng *ast.RangeStmt, as *ast.AssignStmt,
	mentionsLoopVar func(ast.Node) bool, mapDesc string, report func(Diagnostic)) {

	// Float accumulation: addition is not associative, so even
	// reductions that look commutative drift with order.
	if as.Tok.String() == "+=" || as.Tok.String() == "-=" || as.Tok.String() == "*=" {
		if t := p.Info.TypeOf(as.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				report(Diagnostic{Pos: as.Pos(), Message: fmt.Sprintf(
					"floating-point accumulation inside iteration over map %s: float "+
						"addition is not associative, so the sum depends on map order; "+
						"accumulate over sorted keys", mapDesc)})
				return
			}
		}
	}
	if as.Tok.String() != "=" {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		// x = append(x, ...) is handled by the append rule.
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(p.Info, call, "append") {
			continue
		}
		if !mentionsLoopVar(rhs) {
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if declaredOutside(p.Info, l, rng) {
				report(Diagnostic{Pos: as.Pos(), Message: fmt.Sprintf(
					"assignment to %s picks a value that depends on the iteration order "+
						"of map %s; iterate sorted keys", l.Name, mapDesc)})
			}
		case *ast.IndexExpr:
			// Keyed writes (index derived from the loop variables, or a
			// map target) are order-independent; unkeyed scatter is not.
			if _, isMap := p.Info.TypeOf(l.X).Underlying().(*types.Map); isMap || mentionsLoopVar(l.Index) {
				continue
			}
			report(Diagnostic{Pos: as.Pos(), Message: fmt.Sprintf(
				"write to %s at an order-dependent position inside iteration over "+
					"map %s", types.ExprString(l), mapDesc)})
		}
	}
}

// rangeVarObj resolves a range key/value expression to its object when
// the range statement declares it.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// declaredOutside reports whether the identifier's object is declared
// outside the range statement.
func declaredOutside(info *types.Info, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether the enclosing function calls a sort.* or
// slices.Sort* function after the range statement — the canonical
// collect-then-sort pattern that restores determinism.
func sortedAfter(p *Package, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "sort":
					found = true
				case "slices":
					if strings.HasPrefix(sel.Sel.Name, "Sort") {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
