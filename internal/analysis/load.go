package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks packages without golang.org/x/tools: module
// (and fixture) packages are parsed and checked from source, while
// their out-of-module dependencies — the standard library — are
// imported from compiler export data located with `go list -export`.
// This keeps ppflint hermetic: it needs only the go toolchain.

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	Module       *struct{ Main bool }
	Error        *struct{ Err string }
}

// goList runs `go list -deps -export -json args...` in dir and decodes
// the JSON stream. Output is in dependency order.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths to compiler export data files.
type exportImporter struct {
	gc      types.Importer
	modules map[string]*types.Package // source-checked module packages
}

func newExportImporter(fset *token.FileSet, exportFiles map[string]string) *exportImporter {
	ei := &exportImporter{modules: map[string]*types.Package{}}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exportFiles[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	ei.gc = importer.ForCompiler(fset, "gc", lookup)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ei.modules[path]; ok {
		return p, nil
	}
	return ei.gc.Import(path)
}

// checkPackage parses files and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path string, files []string) (*Package, error) {
	pkg := &Package{Path: path}
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg.Types = tp
	pkg.buildAllowTables(fset)
	return pkg, nil
}

// LoadModule loads the main-module packages matched (directly or as
// dependencies) by the go list patterns, run from dir. Test files are
// not type-checked — the invariants govern shipped code, and a counter
// read only by a test is not "surfaced" — but they are parsed into
// Package.TestFiles so rules about test coverage itself (errtyped's
// round-trip requirement) can see them.
func LoadModule(dir string, patterns []string) (*Suite, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	exportFiles := map[string]string{}
	var mains []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Module != nil && lp.Module.Main {
			mains = append(mains, lp)
			continue
		}
		exportFiles[lp.ImportPath] = lp.Export
	}
	imp := newExportImporter(fset, exportFiles)
	suite := &Suite{Fset: fset, Dir: abs}
	for _, lp := range mains { // already in dependency order
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		var testFiles []string
		testFiles = append(testFiles, lp.TestGoFiles...)
		testFiles = append(testFiles, lp.XTestGoFiles...)
		for _, f := range testFiles {
			tf, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			pkg.TestFiles = append(pkg.TestFiles, tf)
		}
		imp.modules[lp.ImportPath] = pkg.Types
		suite.Packages = append(suite.Packages, pkg)
	}
	return suite, nil
}

// LoadTree loads every package found under root (a GOPATH-like src
// tree, as used by the analyzer fixtures). The package import path is
// its directory path relative to root. Standard-library imports are
// resolved via export data; goListDir provides the module context for
// that lookup.
func LoadTree(root, goListDir string) (*Suite, error) {
	pkgFiles := map[string][]string{}
	testFiles := map[string][]string{}
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		// _test.go files are parsed but never type-checked, mirroring
		// LoadModule's treatment of the real tree.
		if strings.HasSuffix(path, "_test.go") {
			testFiles[ip] = append(testFiles[ip], path)
			return nil
		}
		pkgFiles[ip] = append(pkgFiles[ip], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Parse once to discover external (non-fixture) imports.
	fset := token.NewFileSet()
	external := map[string]bool{}
	parsed := map[string][]*ast.File{}
	for ip, files := range pkgFiles {
		sort.Strings(files)
		pkgFiles[ip] = files
		for _, fn := range files {
			f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			parsed[ip] = append(parsed[ip], f)
			for _, spec := range f.Imports {
				dep := strings.Trim(spec.Path.Value, `"`)
				if _, local := pkgFiles[dep]; !local && dep != "unsafe" {
					external[dep] = true
				}
			}
		}
	}
	exportFiles := map[string]string{}
	if len(external) > 0 {
		var paths []string
		for p := range external {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(goListDir, paths)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			exportFiles[lp.ImportPath] = lp.Export
		}
	}

	// Check in dependency order over fixture-local imports.
	ei := newExportImporter(fset, exportFiles)
	suite := &Suite{Fset: fset}
	done := map[string]bool{}
	var load func(ip string) error
	load = func(ip string) error {
		if done[ip] {
			return nil
		}
		done[ip] = true
		for _, f := range parsed[ip] {
			for _, spec := range f.Imports {
				dep := strings.Trim(spec.Path.Value, `"`)
				if _, local := pkgFiles[dep]; local {
					if err := load(dep); err != nil {
						return err
					}
				}
			}
		}
		pkg, err := checkPackage(fset, ei, ip, pkgFiles[ip])
		if err != nil {
			return err
		}
		for _, fn := range testFiles[ip] {
			tf, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			pkg.TestFiles = append(pkg.TestFiles, tf)
		}
		ei.modules[ip] = pkg.Types
		suite.Packages = append(suite.Packages, pkg)
		return nil
	}
	var ips []string
	for ip := range pkgFiles {
		ips = append(ips, ip)
	}
	sort.Strings(ips)
	for _, ip := range ips {
		if err := load(ip); err != nil {
			return nil, err
		}
	}
	return suite, nil
}
