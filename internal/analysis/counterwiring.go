package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CounterWiring enforces the accounting contract behind every figure
// the simulator reports: a hardware counter is only trustworthy if the
// simulator increments it AND a reporter or serializer surfaces it.
// PR 2 fixed silent violations of exactly this rule (squashed
// prefetches counted as issued; counters printed but never advanced),
// so the rule is now mechanical:
//
//   - A counter struct is any struct named "Stats" declared in the
//     simulator packages (internal/core, internal/cache, internal/dram,
//     internal/sim, internal/branch) whose fields are all unsigned
//     integers, or any struct whose doc comment carries a
//     `//ppflint:counters` marker.
//   - Every field must be written (=, op=, ++) by simulator code.
//   - Every field must be read somewhere in non-test code — a counter
//     visible only to tests is dead weight in the hardware budget.
//
// Whole-struct operations (`s = Stats{}` resets, struct copies) count
// as neither: a reset does not make a counter live.
var CounterWiring = &Analyzer{
	Name: "counterwiring",
	Doc: "every Stats counter field must be incremented by the simulator and " +
		"surfaced by a reporter or serializer",
	Run: runCounterWiring,
}

// simulatorPackages may declare counter structs and are where counter
// writes must live.
var simulatorPackages = []string{
	"internal/core", "internal/cache", "internal/dram", "internal/sim", "internal/branch",
}

func inSimulatorScope(p *Package) bool {
	for _, seg := range simulatorPackages {
		if p.PathHas(seg) {
			return true
		}
	}
	return false
}

// counterField tracks one field's wiring.
type counterField struct {
	structName string
	name       string
	pos        token.Pos
	written    bool
	read       bool
}

func runCounterWiring(s *Suite, report func(Diagnostic)) {
	// Counter wiring is a whole-program property: the writes live in the
	// simulator packages and the reads live in reporters outside them.
	// When the load pattern covers only simulator packages (e.g.
	// `ppflint ./internal/core`), every counter would look unread, so
	// the analyzer only fires on suites that include reporter-side code.
	wholeProgram := false
	for _, p := range s.Packages {
		if !inSimulatorScope(p) {
			wholeProgram = true
			break
		}
	}
	if !wholeProgram {
		return
	}

	// Pass 1: collect counter structs and their fields.
	fields := map[types.Object]*counterField{}
	for _, p := range s.Packages {
		if !inSimulatorScope(p) {
			continue
		}
		collectCounterStructs(p, fields)
	}
	if len(fields) == 0 {
		return
	}

	// Pass 2: classify every selector touching a counter field.
	for _, p := range s.Packages {
		writer := inSimulatorScope(p)
		for _, f := range p.Files {
			classifyUses(p, f, fields, writer)
		}
	}

	// Pass 3: report unwired fields at their declarations, in source
	// order (the practice this analyzer preaches).
	var ordered []*counterField
	for _, cf := range fields {
		ordered = append(ordered, cf)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].pos < ordered[j].pos })
	for _, cf := range ordered {
		if !cf.written {
			report(Diagnostic{Pos: cf.pos, Message: fmt.Sprintf(
				"counter %s.%s is never incremented by the simulator: a reporter "+
					"would print a frozen zero (write it in internal/{core,cache,dram,sim})",
				cf.structName, cf.name)})
		}
		if !cf.read {
			report(Diagnostic{Pos: cf.pos, Message: fmt.Sprintf(
				"counter %s.%s is never surfaced: no reporter or serializer reads it "+
					"outside tests, so the accounting it represents is invisible",
				cf.structName, cf.name)})
		}
	}
}

// collectCounterStructs finds counter structs in one package.
func collectCounterStructs(p *Package, fields map[types.Object]*counterField) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || len(st.Fields.List) == 0 {
					continue
				}
				_, onGen := directiveIn(gd.Doc, "counters")
				_, onSpec := directiveIn(ts.Doc, "counters")
				marked := onGen || onSpec
				if !marked && (ts.Name.Name != "Stats" || !allUnsignedFields(p, st)) {
					continue
				}
				for _, fl := range st.Fields.List {
					for _, name := range fl.Names {
						obj := p.Info.Defs[name]
						if obj == nil {
							continue
						}
						fields[obj] = &counterField{
							structName: p.Types.Name() + "." + ts.Name.Name,
							name:       name.Name,
							pos:        name.Pos(),
						}
					}
				}
			}
		}
	}
}

// allUnsignedFields reports whether every field is an unsigned integer
// — the signature of a pure event-counter struct.
func allUnsignedFields(p *Package, st *ast.StructType) bool {
	for _, fl := range st.Fields.List {
		t := p.Info.TypeOf(fl.Type)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsUnsigned == 0 {
			return false
		}
	}
	return true
}

// classifyUses walks one file marking counter-field reads and writes.
// Parent tracking distinguishes the selector on the left of an
// assignment (write) from every other mention (read).
func classifyUses(p *Package, f *ast.File, fields map[types.Object]*counterField, writer bool) {
	lookup := func(e ast.Expr) *counterField {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		return fields[p.Info.ObjectOf(sel.Sel)]
	}
	var walk func(n ast.Node) bool
	var markReads func(n ast.Node)
	markReads = func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			// A function literal may itself write counters; re-enter
			// the classifying walk instead of read-marking its body.
			if fl, ok := x.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, walk)
				return false
			}
			if sel, ok := x.(*ast.SelectorExpr); ok {
				if cf := fields[p.Info.ObjectOf(sel.Sel)]; cf != nil {
					cf.read = true
				}
			}
			return true
		})
	}
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if cf := lookup(lhs); cf != nil {
					if writer {
						cf.written = true
					}
					// The base expression of the selector may still
					// read other state.
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						markReads(sel.X)
					}
					continue
				}
				markReads(lhs)
			}
			for _, rhs := range n.Rhs {
				markReads(rhs)
			}
			return false
		case *ast.IncDecStmt:
			if cf := lookup(n.X); cf != nil {
				if writer {
					cf.written = true
				}
				return false
			}
		case *ast.KeyValueExpr:
			// Stats{Field: v} construction in simulator code is a write.
			if id, ok := n.Key.(*ast.Ident); ok {
				if cf := fields[p.Info.ObjectOf(id)]; cf != nil {
					if writer {
						cf.written = true
					}
					markReads(n.Value)
					return false
				}
			}
		case *ast.SelectorExpr:
			if cf := fields[p.Info.ObjectOf(n.Sel)]; cf != nil {
				cf.read = true
			}
		}
		return true
	}
	ast.Inspect(f, walk)
}
