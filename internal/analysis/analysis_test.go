package analysis

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Each analyzer is pinned by a fixture tree under testdata/src/<name>
// containing both seeded violations (matched against `// want` comments)
// and allowlisted/clean negatives that must stay silent.

func TestDeterminismFixture(t *testing.T)   { RunFixture(t, Determinism) }
func TestSaturationFixture(t *testing.T)    { RunFixture(t, Saturation) }
func TestHWBudgetFixture(t *testing.T)      { RunFixture(t, HWBudget) }
func TestCounterWiringFixture(t *testing.T) { RunFixture(t, CounterWiring) }
func TestSentinelFixture(t *testing.T)      { RunFixture(t, Sentinel) }
func TestSnapshotFixture(t *testing.T)      { RunFixture(t, Snapshot) }
func TestGuardedByFixture(t *testing.T)     { RunFixture(t, GuardedBy) }
func TestWireProtoFixture(t *testing.T)     { RunFixture(t, WireProto) }
func TestHotPathFixture(t *testing.T)       { RunFixture(t, HotPath) }
func TestErrTypedFixture(t *testing.T)      { RunFixture(t, ErrTyped) }

// TestPpflintRepo runs the full suite over the real module, pinning the
// invariant `go run ./cmd/ppflint ./...` enforces in CI: the tree is
// clean. Reintroducing any of the bug shapes the analyzers encode —
// dead counters, unsorted map iteration in a report path, raw weight
// stores, drifted table geometry, zero-value Config dispatch — fails
// this test, and with it tier-1.
func TestPpflintRepo(t *testing.T) {
	suite, err := LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := suite.Run(All())
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", suite.Posf(d.Pos), d.Message, d.Analyzer)
	}
}

// TestAnalyzerMetadata keeps names and docs usable for the -list flag
// and the allow-comment syntax (names are the annotation key).
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.ToLower(a.Name) != a.Name || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be a lowercase single token (it keys //ppflint:allow)", a.Name)
		}
	}
	for _, want := range []string{
		"determinism", "saturation", "hwbudget", "counterwiring", "sentinel",
		"snapshot", "guardedby", "wireproto", "hotpath", "errtyped",
	} {
		if !seen[want] {
			t.Errorf("expected analyzer %q to be registered", want)
		}
	}
}

// TestFixtureConventions enforces the fixture contract on every
// registered analyzer: a tree under testdata/src/<name> exercising at
// least one seeded violation (a `// want` expectation) and at least one
// //ppflint:allow suppression for that analyzer. An analyzer without a
// positive case is unproven; one without an allow case has an untested
// escape hatch — the first real-world false positive would need it.
func TestFixtureConventions(t *testing.T) {
	for _, a := range All() {
		root := filepath.Join("testdata", "src", a.Name)
		info, err := os.Stat(root)
		if err != nil || !info.IsDir() {
			t.Errorf("analyzer %q has no fixture tree at %s", a.Name, root)
			continue
		}
		wants, allows := 0, 0
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			wants += strings.Count(string(data), "// want ")
			allows += strings.Count(string(data), "//ppflint:allow "+a.Name)
			return nil
		})
		if err != nil {
			t.Errorf("walking %s: %v", root, err)
			continue
		}
		if wants == 0 {
			t.Errorf("analyzer %q fixture has no `// want` expectation: nothing proves it fires", a.Name)
		}
		if allows == 0 {
			t.Errorf("analyzer %q fixture has no //ppflint:allow %s suppression: the escape hatch is untested", a.Name, a.Name)
		}
	}
}

// TestParseAllow pins the escape-hatch comment grammar.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//ppflint:allow determinism wall time is operator feedback", "determinism", true},
		{"//ppflint:allow saturation", "saturation", true},
		{"// ppflint:allow determinism", "", false}, // space breaks the directive form
		{"//ppflint:allowdeterminism", "", false},
		{"// ordinary comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseAllow(c.text)
		if ok != c.ok || name != c.name {
			t.Errorf("parseAllow(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}
