package analysis

import (
	"strings"
	"testing"
)

// Each analyzer is pinned by a fixture tree under testdata/src/<name>
// containing both seeded violations (matched against `// want` comments)
// and allowlisted/clean negatives that must stay silent.

func TestDeterminismFixture(t *testing.T)   { RunFixture(t, Determinism) }
func TestSaturationFixture(t *testing.T)    { RunFixture(t, Saturation) }
func TestHWBudgetFixture(t *testing.T)      { RunFixture(t, HWBudget) }
func TestCounterWiringFixture(t *testing.T) { RunFixture(t, CounterWiring) }
func TestSentinelFixture(t *testing.T)      { RunFixture(t, Sentinel) }
func TestSnapshotFixture(t *testing.T)      { RunFixture(t, Snapshot) }

// TestPpflintRepo runs the full suite over the real module, pinning the
// invariant `go run ./cmd/ppflint ./...` enforces in CI: the tree is
// clean. Reintroducing any of the bug shapes the analyzers encode —
// dead counters, unsorted map iteration in a report path, raw weight
// stores, drifted table geometry, zero-value Config dispatch — fails
// this test, and with it tier-1.
func TestPpflintRepo(t *testing.T) {
	suite, err := LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := suite.Run(All())
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", suite.Posf(d.Pos), d.Message, d.Analyzer)
	}
}

// TestAnalyzerMetadata keeps names and docs usable for the -list flag
// and the allow-comment syntax (names are the annotation key).
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.ToLower(a.Name) != a.Name || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be a lowercase single token (it keys //ppflint:allow)", a.Name)
		}
	}
	for _, want := range []string{"determinism", "saturation", "hwbudget", "counterwiring", "sentinel", "snapshot"} {
		if !seen[want] {
			t.Errorf("expected analyzer %q to be registered", want)
		}
	}
}

// TestParseAllow pins the escape-hatch comment grammar.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//ppflint:allow determinism wall time is operator feedback", "determinism", true},
		{"//ppflint:allow saturation", "saturation", true},
		{"// ppflint:allow determinism", "", false}, // space breaks the directive form
		{"//ppflint:allowdeterminism", "", false},
		{"// ordinary comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseAllow(c.text)
		if ok != c.ok || name != c.name {
			t.Errorf("parseAllow(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}
