package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// WireProto keeps the serving protocol's op and error-code tables
// closed under extension. The wire format is a hand-rolled binary
// protocol: adding a request op means touching the client encoder, the
// server dispatch switch, and the frame-size bound table — and nothing
// ties the three together except discipline. An op with no decode half
// does not fail loudly; it falls into the unknown-op path or, worse,
// hangs a client waiting for a response class the server never sends.
// Same for error codes: a code without an exported sentinel cannot be
// matched with errors.Is across the connection, and a code without a
// String case renders as a bare number in every log line.
//
// The analyzer self-scopes to packages declaring the constants it
// checks. Every unsigned constant named `op<Upper>` must be used in
// three roles:
//
//   - encode: inside (or as an argument to) a function named encode* or
//     marked //ppflint:wireencode;
//   - decode: in a switch case or ==/!= comparison, or as an argument
//     to a //ppflint:wiredecode function (the client's expected-op
//     parameter);
//   - bound: inside the //ppflint:framebound function, the table
//     mapping each op to its maximum legal frame size.
//
// Every constant named `Code<Upper>` of a locally-declared type must
// appear in that type's String method and in an exported Err* sentinel
// var, wiring the code↔error tables in both directions.
var WireProto = &Analyzer{
	Name: "wireproto",
	Doc: "every wire op constant must have an encode site, a decode dispatch, " +
		"and a //ppflint:framebound size entry; every wire error code must have " +
		"a String case and an exported Err* sentinel, so protocol extensions " +
		"cannot ship half-wired",
	Run: runWireProto,
}

func runWireProto(s *Suite, report func(Diagnostic)) {
	encodeSinks := s.MarkedObjs("wireencode")
	decodeSinks := s.MarkedObjs("wiredecode")
	boundFns := s.MarkedObjs("framebound")
	for _, p := range s.Packages {
		ops := collectOpConsts(p)
		codes := collectCodeConsts(p)
		if len(ops) > 0 {
			checkOps(p, ops, encodeSinks, decodeSinks, boundFns, report)
		}
		for _, c := range codes {
			checkCode(p, c, report)
		}
	}
}

// wireConst is one collected op or code constant.
type wireConst struct {
	obj  *types.Const
	decl *ast.Ident
}

// collectOpConsts gathers the package's unsigned op<Upper> constants.
func collectOpConsts(p *Package) []wireConst {
	var out []wireConst
	for _, c := range constDecls(p) {
		name := c.decl.Name
		if !strings.HasPrefix(name, "op") || len(name) < 3 || !unicode.IsUpper(rune(name[2])) {
			continue
		}
		b, ok := c.obj.Type().Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsUnsigned == 0 {
			continue
		}
		out = append(out, c)
	}
	return out
}

// collectCodeConsts gathers Code<Upper> constants of locally-declared
// named types (the wire error-code enums).
func collectCodeConsts(p *Package) []wireConst {
	var out []wireConst
	for _, c := range constDecls(p) {
		name := c.decl.Name
		if !strings.HasPrefix(name, "Code") || len(name) < 5 || !unicode.IsUpper(rune(name[4])) {
			continue
		}
		named, ok := c.obj.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != p.Types {
			continue
		}
		out = append(out, c)
	}
	return out
}

// constDecls iterates the package-level constant declarations.
func constDecls(p *Package) []wireConst {
	var out []wireConst
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if obj, ok := p.Info.Defs[name].(*types.Const); ok {
						out = append(out, wireConst{obj: obj, decl: name})
					}
				}
			}
		}
	}
	return out
}

// checkOps classifies every use of every op constant into its roles and
// reports the ops missing one.
func checkOps(p *Package, ops []wireConst, encodeSinks, decodeSinks, boundFns map[types.Object]*MarkedFunc, report func(Diagnostic)) {
	opObjs := map[types.Object]bool{}
	for _, c := range ops {
		opObjs[c.obj] = true
	}
	hasBoundFn := false
	for _, m := range boundFns {
		if m.Pkg == p {
			hasBoundFn = true
		}
	}
	roles := map[types.Object]map[string]bool{}
	addRole := func(obj types.Object, role string) {
		if roles[obj] == nil {
			roles[obj] = map[string]bool{}
		}
		roles[obj][role] = true
	}
	for _, f := range p.Files {
		classifyOpUses(p, f, opObjs, encodeSinks, decodeSinks, boundFns, addRole)
	}
	for _, c := range ops {
		if !hasBoundFn {
			report(Diagnostic{Pos: c.decl.Pos(), Message: fmt.Sprintf(
				"package declares wire op %s but no //ppflint:framebound function "+
					"maps ops to their maximum frame size", c.decl.Name)})
			return // one diagnostic for the missing table, not one per op
		}
		var missing []string
		r := roles[c.obj]
		if !r["encode"] {
			missing = append(missing, "an encode site")
		}
		if !r["decode"] {
			missing = append(missing, "a decode dispatch")
		}
		if !r["bound"] {
			missing = append(missing, "a //ppflint:framebound size entry")
		}
		if len(missing) > 0 {
			report(Diagnostic{Pos: c.decl.Pos(), Message: fmt.Sprintf(
				"wire op %s is missing %s (every op needs an encode site, a decode "+
					"dispatch, and a frame-size bound, or its other half ships by luck)",
				c.decl.Name, strings.Join(missing, " and "))})
		}
	}
}

// classifyOpUses walks one file with a parent stack, assigning a role to
// each use of an op constant based on its syntactic context.
func classifyOpUses(p *Package, f *ast.File, opObjs map[types.Object]bool, encodeSinks, decodeSinks, boundFns map[types.Object]*MarkedFunc, addRole func(types.Object, string)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || !opObjs[obj] {
			return true
		}
		// Inside the bound table, the use counts only as the bound role —
		// a switch case there must not double as decode dispatch.
		if fd := enclosingFuncDecl(stack); fd != nil {
			fnObj := p.Info.Defs[fd.Name]
			if _, ok := boundFns[fnObj]; ok {
				addRole(obj, "bound")
				return true
			}
			if _, ok := encodeSinks[fnObj]; ok || strings.HasPrefix(fd.Name.Name, "encode") {
				addRole(obj, "encode")
			}
		}
		for i := len(stack) - 2; i >= 0; i-- {
			switch parent := stack[i].(type) {
			case *ast.CaseClause:
				for _, e := range parent.List {
					if id.Pos() >= e.Pos() && id.End() <= e.End() {
						addRole(obj, "decode")
					}
				}
			case *ast.BinaryExpr:
				if parent.Op == token.EQL || parent.Op == token.NEQ {
					addRole(obj, "decode")
				}
			case *ast.CallExpr:
				callObj := calleeObj(p, parent)
				if callObj == nil {
					continue
				}
				if _, ok := encodeSinks[callObj]; ok || strings.HasPrefix(callObj.Name(), "encode") {
					addRole(obj, "encode")
				}
				if _, ok := decodeSinks[callObj]; ok {
					addRole(obj, "decode")
				}
			}
		}
		return true
	})
}

// enclosingFuncDecl finds the innermost function declaration on the
// parent stack.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// calleeObj resolves a call's function object, if the callee is a plain
// identifier or selector.
func calleeObj(p *Package, call *ast.CallExpr) types.Object {
	id, ok := callee(call)
	if !ok {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// checkCode verifies one error-code constant is wired in both table
// directions: a String case and an exported sentinel.
func checkCode(p *Package, c wireConst, report func(Diagnostic)) {
	named := c.obj.Type().(*types.Named)
	inString := false
	for _, fd := range funcDecls(p) {
		if fd.Name.Name != "String" || fd.Recv == nil {
			continue
		}
		if tn := receiverTypeName(p, fd); tn != named.Obj() {
			continue
		}
		if mentionsObject(p.Info, fd.Body, c.obj) {
			inString = true
		}
	}
	if !inString {
		report(Diagnostic{Pos: c.decl.Pos(), Message: fmt.Sprintf(
			"wire error code %s has no case in %s.String (it would render as the "+
				"numeric fallback in every log line)", c.decl.Name, named.Obj().Name())})
	}
	if !hasSentinelFor(p, c.obj) {
		report(Diagnostic{Pos: c.decl.Pos(), Message: fmt.Sprintf(
			"wire error code %s has no exported Err* sentinel (errors.Is cannot "+
				"match this failure class across the wire)", c.decl.Name)})
	}
}

// hasSentinelFor reports whether a package-level exported Err* var's
// initializer mentions the code constant (the `&WireError{Code: CodeX}`
// sentinel pattern).
func hasSentinelFor(p *Package, obj *types.Const) bool {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				exported := false
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, "Err") && name.IsExported() {
						exported = true
					}
				}
				if !exported {
					continue
				}
				for _, v := range vs.Values {
					if mentionsObject(p.Info, v, obj) {
						return true
					}
				}
			}
		}
	}
	return false
}
