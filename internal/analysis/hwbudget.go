package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// HWBudget keeps the modeled hardware geometry honest against the
// paper's Tables 2 and 3 and against the storage accounting in
// internal/core/storage.go. Five rules:
//
//  1. Array lengths in type declarations must be named constants, so
//     the storage accounting can reference the same symbol and cannot
//     silently drift from the real array dimension.
//  2. Table-size constants (…Entries, table…) must be powers of two —
//     the index math uses masks, and a non-power-of-two table either
//     wastes budgeted entries or aliases out of range.
//  3. A …Entries constant paired with a …IndexBits/…Bits constant must
//     satisfy entries == 1 << bits.
//  4. Constant index masks must have the 2^n - 1 all-ones form.
//  5. When a package declares weightBits alongside WeightMin/WeightMax,
//     the bounds must be exactly the two's-complement rails of that bit
//     width — the accounting multiplies table sizes by weightBits, so a
//     mismatch misstates the hardware budget.
var HWBudget = &Analyzer{
	Name: "hwbudget",
	Doc: "table geometry must be named power-of-two constants consistent with " +
		"the storage accounting (index bits, masks, weight bit width)",
	Run: runHWBudget,
}

var hwbudgetScope = []string{"internal/core", "internal/branch", "internal/prefetch"}

var sizeConstName = regexp.MustCompile(`(?i)(entries|tablesize)$|^table`)

func runHWBudget(s *Suite, report func(Diagnostic)) {
	for _, p := range s.Packages {
		inScope := false
		for _, seg := range hwbudgetScope {
			if p.PathHas(seg) {
				inScope = true
			}
		}
		if !inScope {
			continue
		}
		checkArrayLens(p, report)
		consts := packageIntConsts(p)
		checkSizeConsts(p, consts, report)
		checkEntriesBitsPairs(p, consts, report)
		checkWeightWidth(p, consts, report)
		checkMasks(p, report)
	}
}

// intConst is one package-level integer constant.
type intConst struct {
	val int64
	pos token.Pos
}

func packageIntConsts(p *Package) map[string]intConst {
	out := map[string]intConst{}
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.Int {
			continue
		}
		if v, exact := constant.Int64Val(c.Val()); exact {
			out[name] = intConst{val: v, pos: c.Pos()}
		}
	}
	return out
}

// checkArrayLens flags magic-number array lengths in type declarations.
func checkArrayLens(p *Package, report func(Diagnostic)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				at, ok := n.(*ast.ArrayType)
				if !ok {
					return true
				}
				if lit, ok := at.Len.(*ast.BasicLit); ok {
					report(Diagnostic{Pos: lit.Pos(), Message: fmt.Sprintf(
						"array length %s is a magic number; declare it as a named "+
							"constant so the storage accounting can reference the same value",
						lit.Value)})
				}
				return true
			})
		}
	}
}

// checkSizeConsts enforces power-of-two table sizes.
func checkSizeConsts(p *Package, consts map[string]intConst, report func(Diagnostic)) {
	for name, c := range consts {
		// …Bits constants are widths, not sizes (tableBits = 10 is the
		// index width of a 1024-entry table, not a 10-entry table).
		if strings.HasSuffix(name, "Bits") || strings.HasSuffix(name, "bits") {
			continue
		}
		if sizeConstName.MatchString(name) && !isPow2(c.val) {
			report(Diagnostic{Pos: c.pos, Message: fmt.Sprintf(
				"table size %s = %d is not a power of two; masked indexing would "+
					"alias entries and the budgeted capacity would be unreachable",
				name, c.val)})
		}
	}
}

// checkEntriesBitsPairs ties each …Entries constant to its index-width
// constant: recordTableEntries must equal 1 << recordIndexBits.
func checkEntriesBitsPairs(p *Package, consts map[string]intConst, report func(Diagnostic)) {
	for name, c := range consts {
		prefix := ""
		switch {
		case strings.HasSuffix(name, "TableEntries"):
			prefix = strings.TrimSuffix(name, "TableEntries")
		case strings.HasSuffix(name, "Entries"):
			prefix = strings.TrimSuffix(name, "Entries")
		default:
			continue
		}
		for _, bitsName := range []string{prefix + "IndexBits", prefix + "Bits"} {
			b, ok := consts[bitsName]
			if !ok {
				continue
			}
			if b.val < 63 && c.val != 1<<uint(b.val) {
				report(Diagnostic{Pos: c.pos, Message: fmt.Sprintf(
					"%s = %d but %s = %d implies %d entries; the table geometry and "+
						"its index width have drifted apart",
					name, c.val, bitsName, b.val, int64(1)<<uint(b.val))})
			}
			break
		}
	}
}

// checkWeightWidth ties the accounting's weight bit width to the
// clamp bounds used by training.
func checkWeightWidth(p *Package, consts map[string]intConst, report func(Diagnostic)) {
	bits, ok := lookupFold(consts, "weightbits")
	if !ok {
		return
	}
	rail := int64(1) << uint(bits.val-1)
	if max, ok := lookupFold(consts, "weightmax"); ok && max.val != rail-1 {
		report(Diagnostic{Pos: max.pos, Message: fmt.Sprintf(
			"WeightMax = %d does not match the %d-bit weight budget in the storage "+
				"accounting (expected %d)", max.val, bits.val, rail-1)})
	}
	if min, ok := lookupFold(consts, "weightmin"); ok && min.val != -rail {
		report(Diagnostic{Pos: min.pos, Message: fmt.Sprintf(
			"WeightMin = %d does not match the %d-bit weight budget in the storage "+
				"accounting (expected %d)", min.val, bits.val, -rail)})
	}
}

func lookupFold(consts map[string]intConst, lower string) (intConst, bool) {
	for name, c := range consts {
		if strings.EqualFold(name, lower) {
			return c, true
		}
	}
	return intConst{}, false
}

// checkMasks flags bitwise-AND index masks whose constant operand is
// not of the all-ones 2^n - 1 form.
func checkMasks(p *Package, report func(Diagnostic)) {
	for _, fd := range funcDecls(p) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.AND {
				return true
			}
			// Fully constant expressions are folded elsewhere; a mask
			// needs exactly one constant side.
			xv, xc := constInt64(p.Info, be.X)
			yv, yc := constInt64(p.Info, be.Y)
			if xc == yc {
				return true
			}
			v := xv
			if yc {
				v = yv
			}
			if !isLowMask(v) {
				report(Diagnostic{Pos: be.Pos(), Message: fmt.Sprintf(
					"index mask %s has constant value %d, which is not of the form "+
						"2^n-1; masks must cover a full power-of-two table", types.ExprString(be), v)})
			}
			return true
		})
	}
}
