// Package hotpath seeds allocation violations for the hotpath
// analyzer. Fixture trees are not buildable modules, so the compiler's
// escape output is simulated with //ppflint:escapes comments placed at
// the would-be diagnostic positions; attribution into annotated bodies,
// positioning, and allow handling are exactly the production paths.
package hotpath

// sum is the clean shape: annotated and escape-free.
//
//ppflint:hotpath
func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// boxed models the real bug class: an inlined error constructor boxes
// its operand into fmt.Errorf's ...any slice, an allocation on what is
// supposed to be a zero-alloc decode path.
//
//ppflint:hotpath
func boxed(b byte) error {
	if b > 9 {
		return errBad(b) //ppflint:escapes b escapes to heap // want "hot path boxed allocates: b escapes to heap"
	}
	return nil
}

func errBad(b byte) error { return nil }

// addressed pins the moved-to-heap message form.
//
//ppflint:hotpath
func addressed() *int {
	x := 0 //ppflint:escapes moved to heap: x // want "hot path addressed allocates: moved to heap: x"
	return &x
}

// closureInside: a closure does not leave the hot path by being a
// closure — escapes inside it still land in the annotated span.
//
//ppflint:hotpath
func closureInside(xs []int) int {
	f := func() int {
		return len(xs) //ppflint:escapes func literal escapes to heap // want "hot path closureInside allocates: func literal escapes to heap"
	}
	return f()
}

// cold is not annotated: the same escape is none of our business.
func cold(n int) []int {
	return make([]int, n) //ppflint:escapes make([]int, n) escapes to heap
}

// amortized demonstrates the escape hatch for a measured, deliberate
// allocation (growth amortized across calls).
//
//ppflint:hotpath
func amortized(buf []byte, n int) []byte {
	//ppflint:allow hotpath growth is amortized: one alloc per table doubling, measured by the bench harness
	return append(buf, make([]byte, n)...) //ppflint:escapes make([]byte, n) escapes to heap
}
