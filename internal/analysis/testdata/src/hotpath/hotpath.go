// Package hotpath seeds allocation violations for the hotpath
// analyzer. Fixture trees are not buildable modules, so the compiler's
// escape output is simulated with //ppflint:escapes comments placed at
// the would-be diagnostic positions; attribution into annotated bodies,
// positioning, and allow handling are exactly the production paths.
package hotpath

// sum is the clean shape: annotated and escape-free.
//
//ppflint:hotpath
func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// boxed models the real bug class: an inlined error constructor boxes
// its operand into fmt.Errorf's ...any slice, an allocation on what is
// supposed to be a zero-alloc decode path.
//
//ppflint:hotpath
func boxed(b byte) error {
	if b > 9 {
		return errBad(b) //ppflint:escapes b escapes to heap // want "hot path boxed allocates: b escapes to heap"
	}
	return nil
}

func errBad(b byte) error { return nil }

// addressed pins the moved-to-heap message form.
//
//ppflint:hotpath
func addressed() *int {
	x := 0 //ppflint:escapes moved to heap: x // want "hot path addressed allocates: moved to heap: x"
	return &x
}

// closureInside: a closure does not leave the hot path by being a
// closure — escapes inside it still land in the annotated span.
//
//ppflint:hotpath
func closureInside(xs []int) int {
	f := func() int {
		return len(xs) //ppflint:escapes func literal escapes to heap // want "hot path closureInside allocates: func literal escapes to heap"
	}
	return f()
}

// cold is not annotated: the same escape is none of our business.
func cold(n int) []int {
	return make([]int, n) //ppflint:escapes make([]int, n) escapes to heap
}

// The index-matrix scratch shapes below pin the batch-kernel contract
// from internal/core: the per-burst index matrix must live in the
// filter (a receiver-resident fixed array reused across calls), never
// per call. indexVec/filter mirror the production types in miniature.

type indexVec [9]uint16

type filter struct {
	mat [16]indexVec
}

// decideBatchResident is the production shape: rows are written into
// the receiver's fixed-size scratch and never escape the call.
//
//ppflint:hotpath
func (f *filter) decideBatchResident(ins []uint64) int {
	n := 0
	for i := range ins {
		row := &f.mat[i&15]
		for j := range row {
			row[j] = uint16(ins[i] >> uint(j))
		}
		n += int(row[0])
	}
	return n
}

// decideBatchEscapes is the regression the fixture exists to catch: a
// per-burst matrix allocated inside the kernel, one heap allocation on
// every decide call.
//
//ppflint:hotpath
func decideBatchEscapes(ins []uint64) int {
	mat := make([]indexVec, len(ins)) //ppflint:escapes make([]indexVec, len(ins)) escapes to heap // want "hot path decideBatchEscapes allocates: make.*indexVec.* escapes to heap"
	for i := range ins {
		mat[i][0] = uint16(ins[i])
	}
	return int(mat[0][0])
}

// rowLeaks models the subtler escape: a row pointer returned out of the
// kernel forces the whole receiver scratch to the heap.
//
//ppflint:hotpath
func (f *filter) rowLeaks(in uint64) *indexVec {
	row := &f.mat[0] //ppflint:escapes f escapes to heap // want "hot path rowLeaks allocates: f escapes to heap"
	row[0] = uint16(in)
	return row
}

// amortized demonstrates the escape hatch for a measured, deliberate
// allocation (growth amortized across calls).
//
//ppflint:hotpath
func amortized(buf []byte, n int) []byte {
	//ppflint:allow hotpath growth is amortized: one alloc per table doubling, measured by the bench harness
	return append(buf, make([]byte, n)...) //ppflint:escapes make([]byte, n) escapes to heap
}
