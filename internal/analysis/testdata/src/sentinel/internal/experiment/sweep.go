// Package experiment is the sentinel-analyzer fixture: the two
// zero-value-sentinel bug shapes PR 2 fixed by hand, plus their
// corrected forms.
package experiment

// Config mirrors the filter's threshold configuration.
type Config struct {
	TauHi  int
	TauLo  int
	ThetaP int
	ThetaN int
}

// DefaultConfig is the explicit way to ask for defaults.
func DefaultConfig() Config { return Config{TauHi: 40, TauLo: -35, ThetaP: 30, ThetaN: -32} }

// NewWrongCompare dispatches defaults off the zero value, making the
// legal all-zero threshold point unrepresentable.
func NewWrongCompare(cfg Config) Config {
	if cfg == (Config{}) { // want "zero value to dispatch defaults"
		return DefaultConfig()
	}
	return cfg
}

// NewWrongConjunction is the field-by-field spelling of the same bug.
func NewWrongConjunction(cfg Config) Config {
	if cfg.TauHi == 0 && cfg.TauLo == 0 && cfg.ThetaP == 0 && cfg.ThetaN == 0 { // want "zero-value sentinel"
		return DefaultConfig()
	}
	return cfg
}

// TwoFieldGuard tests only two fields, which stays below the
// conjunction threshold and must not be flagged.
func TwoFieldGuard(cfg Config) bool {
	return cfg.TauHi == 0 && cfg.TauLo == 0
}

// ThresholdPoint is one sweep cell.
type ThresholdPoint struct {
	TauHi   int
	TauLo   int
	Speedup float64
}

// bestWrong folds the argmax over a zero-valued accumulator: an
// all-non-positive grid reports the out-of-grid point (0, 0).
func bestWrong(pts []ThresholdPoint) ThresholdPoint {
	var best ThresholdPoint // want "seeded from the zero value"
	for _, pt := range pts {
		if pt.Speedup > best.Speedup {
			best = pt
		}
	}
	return best
}

// bestWrongLit is the composite-literal spelling of the same seed.
func bestWrongLit(pts []ThresholdPoint) ThresholdPoint {
	best := ThresholdPoint{} // want "seeded from the zero value"
	for _, pt := range pts {
		if pt.Speedup > best.Speedup {
			best = pt
		}
	}
	return best
}

// bestRight seeds from the first element, so the winner is always a
// member of the grid.
func bestRight(pts []ThresholdPoint) ThresholdPoint {
	if len(pts) == 0 {
		return ThresholdPoint{}
	}
	best := pts[0]
	for _, pt := range pts[1:] {
		if pt.Speedup > best.Speedup {
			best = pt
		}
	}
	return best
}

// minWall picks a true zero-anchored minimum — time-like quantities
// where zero is a legal baseline — with the escape hatch documenting it.
func minWall(pts []ThresholdPoint) ThresholdPoint {
	var worst ThresholdPoint //ppflint:allow sentinel zero speedup is a real lower bound here
	for _, pt := range pts {
		if pt.Speedup < worst.Speedup {
			worst = pt
		}
	}
	return worst
}
