// Package guardedby seeds locking violations for the guardedby
// analyzer: annotated fields accessed outside their mutex's critical
// section, and receiver-guarded structs touched from free functions.
package guardedby

import "sync"

// registry mirrors the serve stripe shape: a mutex and the state it
// guards, with both annotation spellings (own-line doc and trailing
// comment).
type registry struct {
	mu sync.Mutex
	//ppflint:guardedby mu
	sessions map[string]int
	hits     uint64 //ppflint:guardedby mu
}

// locked is the canonical correct shape: Lock anywhere in the body
// covers every access (the check is flow-insensitive).
func (r *registry) locked(key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hits++
	return r.sessions[key]
}

// unlocked is the bug the rule exists for: a convenient helper reading
// the map off-lock.
func (r *registry) unlocked(key string) int {
	return r.sessions[key] // want "field registry.sessions is guarded by mu but unlocked does not lock it"
}

// goroutineLeak locks, but the closure it spawns runs after Unlock: a
// literal is its own scope and must lock for itself.
func (r *registry) goroutineLeak() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.hits++ // want "field registry.hits is guarded by mu but goroutineLeak \\(func literal\\) does not lock it"
	}()
}

// lockedClosure is the fixed shape of the same pattern.
func (r *registry) lockedClosure() {
	go func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.hits++
	}()
}

// purgeLocked asserts its caller holds the lock; the marker seeds the
// analysis instead of a Lock call.
//
//ppflint:locked mu
func (r *registry) purgeLocked() {
	r.sessions = map[string]int{}
}

// newRegistry constructs with a keyed composite literal: construction
// before sharing is not an access.
func newRegistry() *registry {
	return &registry{sessions: map[string]int{}}
}

// rostats pins the RLock spelling against an RWMutex.
type rostats struct {
	mu   sync.RWMutex
	rows []int //ppflint:guardedby mu
}

func (s *rostats) read() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rows)
}

func (s *rostats) skipsRLock() int {
	return len(s.rows) // want "field rostats.rows is guarded by mu"
}

// box is guarded by another struct's mutex (the serve lease shape: a
// value owned by the stripe that holds it). The dotted spec documents
// the owner; the final component is the mutex matched at Lock sites.
type box struct {
	n int //ppflint:guardedby registry.mu
}

func useBox(r *registry, b *box) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return b.n
}

func leakBox(b *box) int {
	return b.n // want "field box.n is guarded by registry.mu but leakBox does not lock it"
}

// session is single-goroutine by construction: every field access must
// come from a session method, the way exactly one worker drives an
// engine session.
//
//ppflint:guardedby receiver
type session struct {
	state int
	tick  uint64
}

func (s *session) step() {
	s.state++
	s.tick++
}

// spawn returns a closure defined inside a method: lexical ownership
// still holds, so this is clean.
func (s *session) spawn() func() {
	return func() { s.tick++ }
}

func drive(s *session) {
	s.state = 0 // want "field session.state may only be accessed from session methods"
}

// probe demonstrates the escape hatch for a deliberate exception.
func probe(s *session) int {
	return s.state //ppflint:allow guardedby single-threaded debug probe, documented at the call site
}
