// Package core is the saturation-analyzer fixture: a miniature
// perceptron filter with 5-bit saturating weight tables.
package core

const (
	weightMax = 15 // 5-bit saturating counters
	weightMin = -16
	entries   = 8
)

type filter struct {
	weights [2][entries]int8
	bias    [entries]int8
}

// clamp pins a trained weight inside the 5-bit rails.
//
//ppflint:saturating
func clamp(w int8, delta int) int8 {
	v := int(w) + delta
	if v > weightMax {
		return weightMax
	}
	if v < weightMin {
		return weightMin
	}
	return int8(v)
}

// trainWrong demonstrates every forbidden mutation form.
func (f *filter) trainWrong(i int, dir int8) {
	f.weights[0][i] += dir    // want "wraps at the int8 rails"
	f.weights[1][i] -= dir    // want "wraps at the int8 rails"
	f.bias[i]++               // want "wraps at the int8 rails"
	f.bias[i]--               // want "wraps at the int8 rails"
	f.weights[0][i] = dir * 2 // want "bypasses the saturating clamp"
}

// trainRight routes every store through the marked clamp helper.
func (f *filter) trainRight(i int, dir int) {
	f.weights[0][i] = clamp(f.weights[0][i], dir)
	f.bias[i] = clamp(f.bias[i], dir)
}

// scratchOK mutates a loop-local copy, which is not hardware state.
func (f *filter) scratchOK() int {
	var local [entries]int8
	copy(local[:], f.bias[:])
	s := 0
	for i := range local {
		local[i]++ // local scratch, not a table element
		s += int(local[i])
	}
	return s
}

// allowedRaw shows the escape hatch: a deliberate raw store (e.g. a
// snapshot restore) annotated with the reason.
func (f *filter) allowedRaw(snapshot [entries]int8) {
	for i := range snapshot {
		f.bias[i] = snapshot[i] //ppflint:allow saturation restoring a checkpoint already inside the rails
	}
}
