// Package prefetch pins the hwbudget analyzer's scope over the
// prefetcher package: SPP's signature, pattern and filter tables are
// budgeted hardware (paper Table 2), so their geometry constants obey
// the same named-power-of-two discipline as the core filter's.
package prefetch

const (
	// Consistent geometry: a signature table whose size matches its
	// declared index width must stay silent.
	sigIndexBits    = 8
	sigTableEntries = 1 << sigIndexBits

	// The paper budgets 2048-entry pattern tables; a non-power-of-two
	// size would alias under masked indexing.
	patternTableEntries = 1000 // want "not a power of two"

	// An Entries constant drifted from its index width.
	zoneIndexBits = 6
	zoneEntries   = 32 // want "drifted apart"
)

type sppTables struct {
	sig     [sigTableEntries]uint16
	pattern [64]int8 // want "magic number"
}

// offsetOf masks a block offset into a power-of-two page; the full-ones
// mask form must stay silent.
func offsetOf(addr uint64) uint64 {
	return addr & (sigTableEntries - 1)
}

// confBucket extracts a tag field, not a table index; the allowlist is
// the reviewed escape hatch for non-mask AND constants.
func confBucket(c uint64) uint64 {
	return c & 0x30 //ppflint:allow hwbudget confidence tag bits, not a table index
}
