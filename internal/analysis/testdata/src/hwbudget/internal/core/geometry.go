// Package core is the hwbudget-analyzer fixture: table geometry
// constants that drift from the storage accounting in every way the
// analyzer checks.
package core

const (
	// Consistent geometry: must not be flagged.
	recordIndexBits    = 4
	recordTableEntries = 1 << recordIndexBits

	// A table size that is not a power of two.
	rejectTableEntries = 100 // want "not a power of two"

	// Entries constant inconsistent with its declared index width.
	pageIndexBits = 5
	pageEntries   = 16 // want "drifted apart"

	// Width constants are not sizes; tableBits = 10 must not be flagged.
	tableBits = 10

	// Weight rails inconsistent with the accounted bit width.
	weightBits = 5
	WeightMax  = 31  // want "does not match the 5-bit weight budget"
	WeightMin  = -16 // 5-bit lower rail: correct, not flagged
)

type tables struct {
	record [recordTableEntries]int8
	page   [32]int8 // want "magic number"
}

// index masks the hash down to the table.
func (t *tables) index(h uint64) int {
	return int(h) & (recordTableEntries - 1)
}

// badIndex masks with a constant that is not of the 2^n-1 form, so part
// of the budgeted table is unreachable.
func (t *tables) badIndex(h uint64) int {
	return int(h) & 0xFE // want "not of the form"
}

// allowedMask shows the escape hatch for a deliberate non-contiguous
// mask (e.g. extracting a tag field, not indexing a table).
func (t *tables) allowedMask(h uint64) uint64 {
	return h & 0xF0 //ppflint:allow hwbudget tag extraction, not a table index
}
