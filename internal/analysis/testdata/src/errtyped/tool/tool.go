// Package tool sits off the wire/snapshot boundary: its sentinel needs
// no round-trip test, but the wrap and compare rules still apply.
package tool

import (
	"errors"
	"fmt"
)

var ErrNotReady = errors.New("tool: not ready")

func annotate(op string) error { return fmt.Errorf("%s: %w", op, ErrNotReady) }
