// Package serve (fixture) seeds sentinel-identity violations for the
// errtyped analyzer: lossy wrapping, raw comparisons, and boundary
// sentinels with no round-trip test pinning them. The directory path
// matters — it places these sentinels on the wire/snapshot boundary.
package serve

import (
	"errors"
	"fmt"
)

var (
	// ErrShed is the healthy shape: wrapped with %w, matched with
	// errors.Is, pinned by the test file.
	ErrShed = errors.New("serve: shed")
	// ErrStarved has no errors.Is reference in any test.
	ErrStarved = errors.New("serve: starved") // want "boundary sentinel ErrStarved has no errors.Is test reference"
	// ErrParked demonstrates the escape hatch for a sentinel matched by
	// code, not identity.
	ErrParked = errors.New("serve: parked") //ppflint:allow errtyped matched by error code on the wire, identity never crosses
)

func wrapOK() error { return fmt.Errorf("reading frame: %w", ErrShed) }

func wrapBad() error {
	return fmt.Errorf("reading frame: %v", ErrShed) // want "sentinel ErrShed wrapped with %v flattens to text"
}

func wrapBadString() error {
	return fmt.Errorf("op %d failed: %s", 3, ErrStarved) // want "sentinel ErrStarved wrapped with %s"
}

func compareBad(err error) bool {
	return err == ErrShed // want "== comparison against sentinel ErrShed breaks as soon as a caller wraps"
}

func compareOK(err error) bool { return errors.Is(err, ErrShed) }

func useParked() error { return ErrParked }
