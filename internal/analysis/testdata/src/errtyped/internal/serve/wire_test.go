package serve

import (
	"errors"
	"testing"
)

// TestShedRoundTrip is the reference the boundary rule looks for: an
// errors.Is assertion against the sentinel. Its presence keeps ErrShed
// clean while ErrStarved (no reference anywhere) is reported.
func TestShedRoundTrip(t *testing.T) {
	if !errors.Is(wrapOK(), ErrShed) {
		t.Fatal("wrapped sentinel lost its identity")
	}
}
