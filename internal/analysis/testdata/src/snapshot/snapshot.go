// Package snapshot seeds field-coverage violations for the snapshot
// analyzer: structs with SnapshotWalk/snapshotWalk(*Walker) methods
// must serialize or explicitly park every field.
package snapshot

// Walker mirrors internal/snap.Walker; the analyzer matches the
// parameter type by name so fixtures stay hermetic.
type Walker struct{}

func (w *Walker) Uint64(v *uint64) {}
func (w *Walker) Bool(v *bool)     {}
func (w *Walker) Static(...any)    {}

// complete walks one field, parks one in Static: clean.
type complete struct {
	count uint64
	cfg   int
}

func (c *complete) snapshotWalk(w *Walker) {
	w.Uint64(&c.count)
	w.Static(c.cfg)
}

// missingField forgets its newest field: the bug class the rule exists
// for — a restore would silently zero b.
type missingField struct {
	a uint64
	b bool
}

func (m *missingField) snapshotWalk(w *Walker) { // want "snapshot walk for missingField does not visit field b"
	w.Uint64(&m.a)
}

// exportedWalk pins the exported-method spelling and multiple misses
// (one diagnostic per missing field).
type exportedWalk struct {
	A uint64
	B uint64
	C uint64
}

func (e *exportedWalk) SnapshotWalk(w *Walker) { // want "does not visit field B" "does not visit field C"
	w.Uint64(&e.A)
}

// looped accesses fields through range loops and index expressions;
// any selector on the receiver counts as a visit.
type looped struct {
	rows []uint64
	tick uint64
}

func (l *looped) snapshotWalk(w *Walker) {
	for i := range l.rows {
		w.Uint64(&l.rows[i])
	}
	w.Uint64(&l.tick)
}

// delegated visits a field by calling its own walk method: still a
// selector on the receiver, still a visit.
type inner struct {
	x uint64
}

func (in *inner) snapshotWalk(w *Walker) {
	w.Uint64(&in.x)
}

type delegated struct {
	nested inner
}

func (d *delegated) snapshotWalk(w *Walker) {
	d.nested.snapshotWalk(w)
}

// notWalker has the right method name but the wrong parameter type; it
// is not a snapshot walk and its missing fields must not be reported.
type notWalker struct{}

type otherParam struct {
	ignored uint64
}

func (o *otherParam) snapshotWalk(n *notWalker) {}

// empty has no fields; an empty walk is clean.
type empty struct{}

func (empty) SnapshotWalk(*Walker) {}

// allowed demonstrates the escape hatch for a deliberate skip.
type allowed struct {
	a uint64
	b uint64
}

//ppflint:allow snapshot b is reconstructed by the caller
func (al *allowed) snapshotWalk(w *Walker) {
	w.Uint64(&al.a)
}

// resetWhole: a whole-receiver reassignment covers every field, present
// and future, by construction — clean.
type resetWhole struct {
	weights uint64
	hist    bool
}

func (r *resetWhole) snapshotWalk(w *Walker) {
	w.Uint64(&r.weights)
	w.Bool(&r.hist)
}

func (r *resetWhole) Reset() {
	*r = resetWhole{}
}

// resetFieldwise mentions every field explicitly: also clean.
type resetFieldwise struct {
	weights uint64
	hist    bool
}

func (r *resetFieldwise) snapshotWalk(w *Walker) {
	w.Uint64(&r.weights)
	w.Bool(&r.hist)
}

func (r *resetFieldwise) Reset() {
	r.weights = 0
	r.hist = false
}

// resetPartial forgets a field: the re-lease state-leak bug the Reset
// rule exists for.
type resetPartial struct {
	weights uint64
	hist    bool
}

func (r *resetPartial) snapshotWalk(w *Walker) {
	w.Uint64(&r.weights)
	w.Bool(&r.hist)
}

func (r *resetPartial) Reset() { // want "Reset on snapshot-walked resetPartial does not touch field hist"
	r.weights = 0
}

// resetUnwalked is not snapshot-walked, so its partial Reset is not the
// analyzer's business.
type resetUnwalked struct {
	weights uint64
	hist    bool
}

func (r *resetUnwalked) Reset() {
	r.weights = 0
}

// resetConfig: fields the walk parks in Static are configuration, so a
// Reset that keeps them is clean without any annotation.
type resetConfig struct {
	weights uint64
	degree  uint64
}

func (r *resetConfig) snapshotWalk(w *Walker) {
	w.Uint64(&r.weights)
	w.Static(r.degree)
}

func (r *resetConfig) Reset() {
	r.weights = 0
}

// resetAllowed demonstrates the escape hatch on the Reset half for a
// walked (non-Static) field that deliberately survives a reset.
type resetAllowed struct {
	weights uint64
	wiring  bool
}

func (r *resetAllowed) snapshotWalk(w *Walker) {
	w.Uint64(&r.weights)
	w.Bool(&r.wiring)
}

//ppflint:allow snapshot wiring survives a reset deliberately
func (r *resetAllowed) Reset() {
	r.weights = 0
}
