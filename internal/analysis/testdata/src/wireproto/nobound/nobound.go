// Package nobound declares wire ops with no frame-size table at all:
// the analyzer reports the missing table once instead of one
// missing-bound diagnostic per op.
package nobound

const (
	opSolo uint8 = 1 // want "no //ppflint:framebound function"
	opDuet uint8 = 2
)

func encodeSolo() []byte { return []byte{opSolo} }
func encodeDuet() []byte { return []byte{opDuet} }

func dispatch(op uint8) bool { return op == opSolo || op == opDuet }
