// Package wireproto seeds half-wired protocol constants for the
// wireproto analyzer: ops missing their encode, decode, or frame-bound
// role, and error codes missing a String case or sentinel.
package wireproto

// Request ops. opPing and opQuiet are fully wired; the others each
// drop one role.
const (
	opPing  uint8 = 1
	opData  uint8 = 2 // want "wire op opData is missing a decode dispatch"
	opMeta  uint8 = 3 // want "wire op opMeta is missing a //ppflint:framebound size entry"
	opLost  uint8 = 4 // want "wire op opLost is missing an encode site"
	opQuiet uint8 = 5
	opHush  uint8 = 6 //ppflint:allow wireproto reserved op, wired behind a build tag in the tracing side-channel
)

// boundFor is the frame-size table. Its op uses count only as the bound
// role: a case here is not decode dispatch.
//
//ppflint:framebound
func boundFor(op uint8, maxFrame int) int {
	switch op {
	case opPing, opQuiet:
		return 1
	case opData:
		return maxFrame
	case opLost:
		return 16
	}
	return maxFrame
}

// encode* functions satisfy the encode role by name.
func encodePing() []byte { return []byte{opPing} }
func encodeData() []byte { return []byte{opData} }
func encodeMeta() []byte { return []byte{opMeta} }

// mustBody is an encode sink by marker instead of by name; ops passed
// to it count as encoded.
//
//ppflint:wireencode
func mustBody(op uint8) []byte { return []byte{op} }

func sendQuiet() []byte { return mustBody(opQuiet) }

// dispatch covers the decode role via switch cases and comparisons.
func dispatch(op uint8) string {
	switch op {
	case opPing:
		return "ping"
	case opMeta:
		return "meta"
	}
	if op == opLost {
		return "lost"
	}
	return "?"
}

// roundTrip is the client-side decode sink: the expected-op argument is
// the op's decode half even though no switch mentions it.
//
//ppflint:wiredecode
func roundTrip(body []byte, wantOp uint8) bool { return len(body) > 0 && body[0] == wantOp }

func askQuiet() bool { return roundTrip(sendQuiet(), opQuiet) }

// errCode is the wire error enum; every Code* constant must appear in
// String and in an exported sentinel.
type errCode uint8

const (
	CodeOops errCode = 1 + iota
	CodeMute         // want "wire error code CodeMute has no case in errCode.String"
	CodeLone         // want "wire error code CodeLone has no exported Err\\* sentinel"
	codeMax
)

// String deliberately skips CodeMute.
func (c errCode) String() string {
	switch c {
	case CodeOops:
		return "oops"
	case CodeLone:
		return "lone"
	}
	return "?"
}

// wireErr mirrors serve.WireError.
type wireErr struct {
	Code errCode
	Msg  string
}

func (e *wireErr) Error() string { return e.Msg }

// Sentinels: CodeLone deliberately has none.
var (
	ErrOops = &wireErr{Code: CodeOops, Msg: "oops"}
	ErrMute = &wireErr{Code: CodeMute, Msg: "mute"}
)

var _ = codeMax
