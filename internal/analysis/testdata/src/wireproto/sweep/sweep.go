// Package sweep mirrors the sweep fabric's lease protocol: request ops
// decoded by a coordinator dispatch switch, response ops decoded
// through the variadic expected-op argument of a //ppflint:wiredecode
// client helper, and a typed error enum behind the opErr frame. The
// seeded violations cover the roles a lease-protocol extension is most
// likely to half-wire: a worker request nobody encodes and a response
// class no client ever expects.
package sweep

// Request ops (worker to coordinator). opDone deliberately ships
// without an encode site.
const (
	opHello uint8 = 0x01
	opLease uint8 = 0x02
	opDone  uint8 = 0x03 // want "wire op opDone is missing an encode site"
)

// Response ops (coordinator to worker). opWait deliberately ships with
// no decode half — the server would send a frame no client recognizes.
const (
	opWelcome uint8 = 0x81
	opCell    uint8 = 0x82
	opWait    uint8 = 0x83 // want "wire op opWait is missing a decode dispatch"
	opErr     uint8 = 0xFF
	opTrace   uint8 = 0x7E //ppflint:allow wireproto debug side-channel op, wired only behind a build tag
)

// boundFor is the frame-size table; ops used here take only the bound
// role, never decode.
//
//ppflint:framebound
func boundFor(op uint8, maxFrame int) int {
	switch op {
	case opHello:
		return 1 + 8 + 4096
	case opLease, opDone:
		return 1 + 8 + 1
	case opWelcome, opWait:
		return 1 + 8
	case opCell, opErr:
		return maxFrame
	}
	return maxFrame
}

func encodeHello(name string) []byte  { return append([]byte{opHello}, name...) }
func encodeLease() []byte             { return []byte{opLease} }
func encodeWelcome(ms uint64) []byte  { return []byte{opWelcome, byte(ms)} }
func encodeCell(id uint64) []byte     { return []byte{opCell, byte(id)} }
func encodeWait(ms uint64) []byte     { return []byte{opWait, byte(ms)} }
func encodeErr(code leaseCode) []byte { return []byte{opErr, byte(code)} }

// dispatch is the coordinator's decode switch over request ops.
func dispatch(op uint8) []byte {
	switch op {
	case opHello:
		return encodeWelcome(300_000)
	case opLease:
		return encodeCell(1)
	case opDone:
		return encodeErr(CodeStale)
	}
	return encodeErr(CodeRogue)
}

// request is the worker's client helper: the variadic expected-op list
// is the decode half of every response op passed through it.
//
//ppflint:wiredecode
func request(req []byte, wantOps ...uint8) uint8 {
	resp := dispatch(req[0])
	for _, w := range wantOps {
		if resp[0] == w {
			return w
		}
	}
	return resp[0]
}

// lease drives one protocol round; opErr decodes by comparison.
func lease() bool {
	op := request(encodeLease(), opWelcome, opCell)
	return op != opErr
}

// leaseCode is the fabric's error enum; CodeRogue deliberately skips
// the String case.
type leaseCode uint8

const (
	CodeStale leaseCode = 1 + iota
	CodeRogue           // want "wire error code CodeRogue has no case in leaseCode.String"
)

func (c leaseCode) String() string {
	if c == CodeStale {
		return "stale"
	}
	return "?"
}

// fabErr mirrors sweepfab.WireError.
type fabErr struct {
	Code leaseCode
}

func (e *fabErr) Error() string { return e.Code.String() }

// Sentinels wire both codes back to errors.Is.
var (
	ErrStale = &fabErr{Code: CodeStale}
	ErrRogue = &fabErr{Code: CodeRogue}
)

var _ = lease
var _ = encodeHello
var _ = encodeWait
var _ = boundFor
