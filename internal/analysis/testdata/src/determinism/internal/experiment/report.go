// Package experiment is a determinism-analyzer fixture modeled on the
// real result paths: histogram maps collected into rendered reports.
package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderUnsorted reproduces the bug class the analyzer exists for: the
// delta histogram is emitted in map order, so two runs (or two -j
// worker counts) render different bytes.
func RenderUnsorted(deltas map[int64]uint64) string {
	var sb strings.Builder
	for d, c := range deltas {
		fmt.Fprintf(&sb, "%+d:%d ", d, c) // want "randomized map order"
	}
	return sb.String()
}

// CollectUnsorted appends map entries with no later sort: the slice
// order is the randomized iteration order.
func CollectUnsorted(deltas map[int64]uint64) []int64 {
	var out []int64
	for d := range deltas {
		out = append(out, d) // want "no later sort"
	}
	return out
}

// CollectSorted is the canonical safe pattern — collect, then sort in
// the same function — and must not be flagged.
func CollectSorted(deltas map[int64]uint64) []int64 {
	var out []int64
	for d := range deltas {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SumCounts accumulates integers, which is order-independent and legal.
func SumCounts(deltas map[int64]uint64) uint64 {
	var total uint64
	for _, c := range deltas {
		total += c
	}
	return total
}

// GeomeanDrift accumulates floats in map order; float addition is not
// associative, so the result depends on iteration order.
func GeomeanDrift(speedups map[string]float64) float64 {
	var sum float64
	for _, s := range speedups {
		sum += s // want "not associative"
	}
	return sum / float64(len(speedups))
}

// PickLast overwrites an outer variable from inside map iteration: the
// surviving value is whichever key the runtime visited last.
func PickLast(best map[string]float64) string {
	var winner string
	for name, v := range best {
		if v > 0 {
			winner = name // want "depends on the iteration order"
		}
	}
	return winner
}

// KeyedScatter writes through the loop key, which is order-independent.
func KeyedScatter(in map[int]float64, out []float64) {
	for i, v := range in {
		out[i] = v
	}
}

// AllowedPick documents an intentionally order-dependent site with the
// escape hatch; the annotation must suppress the diagnostic.
func AllowedPick(m map[string]bool) string {
	var any string
	for k := range m {
		any = k //ppflint:allow determinism any representative key will do
	}
	return any
}

// Elapsed reads the wall clock in a result path, which makes reports
// differ between runs.
func Elapsed(startUnix int64) string {
	now := time.Now() // want "wall-clock read"
	return fmt.Sprintf("%d", now.Unix()-startUnix)
}
