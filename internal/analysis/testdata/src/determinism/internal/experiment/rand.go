package experiment

import (
	"math/rand" // want "seeded splitmix streams"
)

// ShuffleMixes is the forbidden pattern: the global math/rand source
// makes mix composition depend on interleaving across goroutines.
func ShuffleMixes(names []string) {
	rand.Shuffle(len(names), func(i, j int) {
		names[i], names[j] = names[j], names[i]
	})
}
