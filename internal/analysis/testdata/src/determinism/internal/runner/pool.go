// Package runner is the allowlisted-negative fixture: wall-clock reads
// are legitimate here (scheduling/ETA feedback, never report bytes), so
// the determinism analyzer must stay silent.
package runner

import "time"

// JobWall times one job for progress output.
func JobWall(run func()) time.Duration {
	start := time.Now()
	run()
	return time.Since(start)
}
