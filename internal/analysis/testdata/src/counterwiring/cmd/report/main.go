// Command report is the fixture's reporter: the fields it prints are
// "surfaced"; everything else in core.Stats is dead weight.
package main

import (
	"fmt"

	"internal/core"
)

func main() {
	var s core.Stats
	fmt.Printf("hits %d issued %d frozen %d\n", s.Hits, s.Issued, s.FrozenZero)
}
