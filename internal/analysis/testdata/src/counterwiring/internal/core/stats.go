// Package core is the counterwiring-analyzer fixture: a Stats counter
// struct whose fields are wired to the simulator and reporter in every
// combination the analyzer distinguishes.
package core

// Stats counts filter events. All-unsigned + named Stats = counter
// struct; every field must be both incremented here and surfaced by a
// reporter.
type Stats struct {
	Hits       uint64
	Issued     uint64
	FrozenZero uint64 // want "never incremented"
	DeadWeight uint64 // want "never surfaced"
	Staged     uint64 //ppflint:allow counterwiring reserved for the multi-core follow-up
}

type filter struct {
	stats Stats
}

// Access advances the live counters; FrozenZero is reported but never
// written, DeadWeight is written but invisible.
func (f *filter) Access(hit bool) {
	if hit {
		f.stats.Hits++
	}
	f.stats.Issued += 2
	f.stats.DeadWeight++
}

// Snapshot hands the struct to reporters; whole-struct copies do not
// count as reads of individual fields.
func (f *filter) Snapshot() Stats { return f.stats }
