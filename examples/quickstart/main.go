// Quickstart: simulate one memory-intensive workload three ways — no
// prefetching, plain SPP, and SPP filtered by PPF — and print the
// headline comparison the paper is about.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	ppf "repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const warmup, detail = 200_000, 1_000_000
	w := workload.MustByName("603.bwaves_s")

	run := func(label string, pf prefetch.Prefetcher, filter *ppf.Filter) sim.Result {
		sys, err := sim.NewSystem(sim.DefaultConfig(1), []sim.CoreSetup{{
			Trace:      w.NewReader(1),
			Prefetcher: pf,
			Filter:     filter,
		}})
		if err != nil {
			panic(err)
		}
		res := sys.Run(warmup, detail)
		c := res.PerCore[0]
		fmt.Printf("%-12s IPC %.3f | L2 demand misses %6d | prefetches issued %6d useful %6d\n",
			label, c.IPC, c.L2.DemandMisses, c.PrefetchesIssued, c.PrefetchesUseful)
		return res
	}

	fmt.Printf("workload: %s (%d instructions after %d warmup)\n\n", w.Name, detail, warmup)
	base := run("baseline", nil, nil)
	spp := run("spp", prefetch.NewSPP(prefetch.DefaultSPPConfig()), nil)

	filter := ppf.New(ppf.DefaultConfig())
	ppfRes := run("spp+ppf", prefetch.NewSPP(prefetch.AggressiveSPPConfig()), filter)

	b, s, p := base.PerCore[0].IPC, spp.PerCore[0].IPC, ppfRes.PerCore[0].IPC
	fmt.Printf("\nspeedup over baseline: SPP %+.1f%%, SPP+PPF %+.1f%% (PPF vs SPP %+.1f%%)\n",
		100*(s/b-1), 100*(p/b-1), 100*(p/s-1))

	fs := filter.Stats()
	fmt.Printf("\nPPF filtered %d of %d candidates (%.1f%% issue rate); trained %d+ / %d-\n",
		fs.Dropped, fs.Inferences, 100*fs.IssueRate(), fs.TrainPositive, fs.TrainNegative)
	st := filter.Storage()
	fmt.Printf("PPF hardware budget: %d bits (%.2f KB)\n", st.TotalBits(), st.TotalKB())
}
