// Custom-prefetcher generality demo (paper §3.2): PPF "can be adapted to
// be used over any underlying prefetcher". This example implements a
// deliberately over-aggressive custom prefetcher — a next-8-line engine
// that fires on every access — and shows PPF learning to reject its junk
// on an irregular workload while keeping its useful prefetches on a
// streaming one.
//
//	go run ./examples/custom_prefetcher
package main

import (
	"fmt"

	ppf "repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// shotgun is a custom prefetcher: on every L2 demand access it blindly
// suggests the next 8 sequential blocks. Great on streams, terrible on
// pointer chasing — exactly the kind of engine that needs a filter.
type shotgun struct{ inner *prefetch.NextLine }

func newShotgun() *shotgun { return &shotgun{inner: prefetch.NewNextLine(8)} }

func (s *shotgun) Name() string                                { return "shotgun-8" }
func (s *shotgun) OnDemand(a prefetch.Access, e prefetch.Emit) { s.inner.OnDemand(a, e) }
func (s *shotgun) OnPrefetchUseful(addr uint64)                { s.inner.OnPrefetchUseful(addr) }
func (s *shotgun) OnPrefetchFill(addr uint64)                  { s.inner.OnPrefetchFill(addr) }
func (s *shotgun) Reset()                                      { s.inner.Reset() }

func main() {
	const warmup, detail = 150_000, 600_000
	for _, name := range []string{"603.bwaves_s", "605.mcf_s"} {
		w := workload.MustByName(name)
		fmt.Printf("== %s ==\n", name)
		var baseIPC float64
		for _, mode := range []string{"baseline", "shotgun", "shotgun+ppf"} {
			setup := sim.CoreSetup{Trace: w.NewReader(7)}
			var filter *ppf.Filter
			switch mode {
			case "shotgun":
				setup.Prefetcher = newShotgun()
			case "shotgun+ppf":
				setup.Prefetcher = newShotgun()
				filter = ppf.New(ppf.DefaultConfig())
				setup.Filter = filter
			}
			sys, err := sim.NewSystem(sim.DefaultConfig(1), []sim.CoreSetup{setup})
			if err != nil {
				panic(err)
			}
			res := sys.Run(warmup, detail)
			c := res.PerCore[0]
			rel := ""
			if mode == "baseline" {
				baseIPC = c.IPC
			} else {
				rel = fmt.Sprintf(" (%+.1f%%)", 100*(c.IPC/baseIPC-1))
			}
			fmt.Printf("  %-12s IPC %.3f%s | issued %6d useful %6d",
				mode, c.IPC, rel, c.PrefetchesIssued, c.PrefetchesUseful)
			if filter != nil {
				fs := filter.Stats()
				fmt.Printf(" | PPF dropped %d/%d (%.0f%% issue rate)",
					fs.Dropped, fs.Inferences, 100*fs.IssueRate())
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
