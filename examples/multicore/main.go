// Multicore contention study: run a 4-core mix of memory-intensive
// workloads and show how PPF's filtering protects the shared LLC and DRAM
// bus — the effect behind the paper's Figure 11 (PPF's multi-core edge is
// larger than its single-core edge).
//
//	go run ./examples/multicore
package main

import (
	"fmt"

	ppf "repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const warmup, detail = 100_000, 400_000
	names := []string{"603.bwaves_s", "605.mcf_s", "619.lbm_s", "623.xalancbmk_s"}

	type scheme struct {
		label string
		setup func(w workload.Workload, seed uint64) sim.CoreSetup
	}
	schemes := []scheme{
		{"baseline", func(w workload.Workload, seed uint64) sim.CoreSetup {
			return sim.CoreSetup{Trace: w.NewReader(seed)}
		}},
		{"spp", func(w workload.Workload, seed uint64) sim.CoreSetup {
			return sim.CoreSetup{Trace: w.NewReader(seed), Prefetcher: prefetch.NewSPP(prefetch.DefaultSPPConfig())}
		}},
		{"spp+ppf", func(w workload.Workload, seed uint64) sim.CoreSetup {
			return sim.CoreSetup{
				Trace:      w.NewReader(seed),
				Prefetcher: prefetch.NewSPP(prefetch.AggressiveSPPConfig()),
				Filter:     ppf.New(ppf.DefaultConfig()),
			}
		}},
	}

	baseIPC := make([]float64, len(names))
	for _, sc := range schemes {
		setups := make([]sim.CoreSetup, len(names))
		for i, n := range names {
			setups[i] = sc.setup(workload.MustByName(n), uint64(i+1))
		}
		sys, err := sim.NewSystem(sim.DefaultConfig(len(names)), setups)
		if err != nil {
			panic(err)
		}
		res := sys.Run(warmup, detail)

		fmt.Printf("== %s ==\n", sc.label)
		sum := 0.0
		for i, c := range res.PerCore {
			rel := ""
			if sc.label == "baseline" {
				baseIPC[i] = c.IPC
			} else if baseIPC[i] > 0 {
				rel = fmt.Sprintf("  (%+.1f%%)", 100*(c.IPC/baseIPC[i]-1))
			}
			fmt.Printf("  core %d %-16s IPC %.3f%s\n", i, names[i], c.IPC, rel)
			sum += c.IPC
		}
		fmt.Printf("  IPC sum %.3f | LLC misses %d | DRAM: %d demand + %d prefetch reads, %d row misses\n\n",
			sum, res.LLC.DemandMisses, res.DRAM.Reads, res.DRAM.PrefetchReads, res.DRAM.RowMisses)
	}
}
