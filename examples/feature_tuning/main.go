// Feature-tuning walkthrough (paper §5.5): add a candidate feature to the
// filter, run a workload, and inspect trained-weight statistics and the
// Pearson correlation against the prefetch outcome — the methodology the
// paper used to select its final nine features.
//
//	go run ./examples/feature_tuning
package main

import (
	"fmt"
	"math"

	ppf "repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const warmup, detail = 150_000, 600_000

	// The candidate feature under evaluation: raw lookahead depth alone.
	// (The paper keeps PC⊕Depth instead; depth alone carries less signal.)
	candidate := ppf.FeatureSpec{
		Name:      "DepthOnly",
		TableSize: 128,
		Index:     func(in *ppf.FeatureInput) uint64 { return uint64(in.Depth) },
	}
	feats := append(ppf.DefaultFeatures(), candidate, ppf.LastSignatureFeature())

	cfg := ppf.DefaultConfig()
	cfg.Features = feats
	filter := ppf.New(cfg)

	// Collect (weight, outcome) samples per feature at every training
	// event, then compute Pearson correlations.
	nf := len(feats)
	sumX := make([]float64, nf)
	sumX2 := make([]float64, nf)
	sumXY := make([]float64, nf)
	var sumY, sumY2 float64
	n := 0
	filter.OnTrainEvent = func(ws []int8, outcome int) {
		y := float64(outcome)
		n++
		sumY += y
		sumY2 += y * y
		for i, w := range ws {
			x := float64(w)
			sumX[i] += x
			sumX2[i] += x * x
			sumXY[i] += x * y
		}
	}

	w := workload.MustByName("623.xalancbmk_s")
	sys, err := sim.NewSystem(sim.DefaultConfig(1), []sim.CoreSetup{{
		Trace:      w.NewReader(3),
		Prefetcher: prefetch.NewSPP(prefetch.AggressiveSPPConfig()),
		Filter:     filter,
	}})
	if err != nil {
		panic(err)
	}
	sys.Run(warmup, detail)

	fmt.Printf("workload %s: %d training samples\n\n", w.Name, n)
	fmt.Printf("%-14s %-9s %-12s %s\n", "feature", "Pearson", "|w|<=2 mass", "saturated mass")
	for i, spec := range feats {
		nn := float64(n)
		cov := sumXY[i] - sumX[i]*sumY/nn
		vx := sumX2[i] - sumX[i]*sumX[i]/nn
		vy := sumY2 - sumY*sumY/nn
		p := 0.0
		if vx > 0 && vy > 0 {
			p = cov / math.Sqrt(vx*vy)
		}
		h := stats.NewHistogram(ppf.WeightMin, ppf.WeightMax)
		for _, v := range filter.WeightsOf(i) {
			if v != 0 {
				h.Add(int(v))
			}
		}
		fmt.Printf("%-14s %+8.3f %10.1f%% %10.1f%%\n",
			spec.Name, p, 100*h.MassNear(2), 100*h.SaturationMass())
	}
	fmt.Println("\nLow-|Pearson| features with near-zero weight mass are rejection candidates (paper §5.5).")
}
