// Package repro is a from-scratch Go reproduction of "Perceptron-Based
// Prefetch Filtering" (Bhatia, Chacon, Teran, Pugsley, Gratz, Jiménez;
// ISCA 2019): an online hashed-perceptron filter that lets a lookahead
// prefetcher speculate aggressively while rejecting the inaccurate
// prefetches that aggression implies.
//
// The repository contains the complete system the paper depends on:
//
//   - internal/core      — the PPF perceptron filter (the contribution)
//   - internal/prefetch  — SPP, BOP, DA-AMPM, next-line and stride engines
//   - internal/cache     — L1/L2/LLC with MSHRs and prefetch fill levels
//   - internal/dram      — banked, bandwidth-limited memory with
//     demand-priority scheduling
//   - internal/branch    — hashed-perceptron branch predictor
//   - internal/sim       — the ChampSim-style multicore timing model
//   - internal/trace     — trace format and synthetic SPEC-like workloads
//   - internal/workload  — the SPEC CPU 2017/2006 and CloudSuite-like suites
//   - internal/experiment— one entry point per paper table and figure
//
// The benchmarks in bench_test.go regenerate every evaluation result;
// EXPERIMENTS.md records paper-vs-measured comparisons, and DESIGN.md
// documents the architecture and the substitutions made for licensed
// workloads and hardware.
package repro
