package repro

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (run the full-budget versions via cmd/experiments; these use
// reduced budgets so `go test -bench=.` completes in minutes), plus
// microbenchmarks of the performance-critical components.
//
// Figure/table mapping (see DESIGN.md §5):
//
//	BenchmarkFigure1       — aggressive fixed-depth SPP motivation sweep
//	BenchmarkTable2Table3  — storage accounting
//	BenchmarkFigure6to8    — feature analysis (weights + Pearson factors)
//	BenchmarkFigure9       — single-core SPEC CPU 2017 speedups
//	BenchmarkFigure10      — cache-miss coverage
//	BenchmarkFigure11      — 4-core memory-intensive mixes
//	BenchmarkFigure12      — 8-core memory-intensive mixes
//	BenchmarkFigure13      — cross-validation (CloudSuite + SPEC 2006)
//	BenchmarkConstrained   — §6.3 small-LLC / low-bandwidth variants
//	BenchmarkAblation      — PPF design-choice ablations
//	BenchmarkGenerality    — §3.2 PPF over other prefetchers

import (
	"testing"

	"repro/internal/branch"
	ppf "repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/kernelbench"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchBudget keeps each figure benchmark to a few seconds per iteration.
func benchBudget() experiment.Budget {
	return experiment.Budget{Warmup: 30_000, Detail: 120_000}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Figure1(experiment.Serial(), benchBudget())
		if len(r.Points) != 9 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkTable2Table3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiment.Table2()) == 0 || len(experiment.Table3()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure6to8(b *testing.B) {
	bud := experiment.Budget{Warmup: 10_000, Detail: 50_000}
	for i := 0; i < b.N; i++ {
		_ = experiment.Figure6(experiment.Serial(), bud)
		r7 := experiment.Figure7(experiment.Serial(), bud)
		if len(r7.Correlations) == 0 {
			b.Fatal("no correlations")
		}
		_ = experiment.Figure8(experiment.Serial(), bud)
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Figure9(experiment.Serial(), benchBudget())
		if len(r.Rows) != 20 {
			b.Fatal("suite incomplete")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Figure10(experiment.Serial(), benchBudget())
		if len(r.L2Coverage) == 0 {
			b.Fatal("no coverage data")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Figure11(experiment.Serial(), 3, benchBudget())
		if r.Cores != 4 {
			b.Fatal("bad core count")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Figure12(experiment.Serial(), 2, benchBudget())
		if r.Cores != 8 {
			b.Fatal("bad core count")
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	bud := experiment.Budget{Warmup: 10_000, Detail: 50_000}
	for i := 0; i < b.N; i++ {
		r := experiment.Figure13(experiment.Serial(), bud)
		if len(r.SPEC2006.Rows) != 29 {
			b.Fatal("2006 suite incomplete")
		}
	}
}

func BenchmarkConstrained(b *testing.B) {
	bud := experiment.Budget{Warmup: 10_000, Detail: 60_000}
	for i := 0; i < b.N; i++ {
		r := experiment.Constrained(experiment.Serial(), bud)
		if len(r.SmallLLC.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	bud := experiment.Budget{Warmup: 10_000, Detail: 40_000}
	for i := 0; i < b.N; i++ {
		r := experiment.Ablation(experiment.Serial(), bud)
		if len(r.Rows) == 0 {
			b.Fatal("no ablations")
		}
	}
}

func BenchmarkSelection(b *testing.B) {
	bud := experiment.Budget{Warmup: 10_000, Detail: 40_000}
	for i := 0; i < b.N; i++ {
		r := experiment.Selection(experiment.Serial(), bud)
		if len(r.Names) != 23 {
			b.Fatal("bad candidate pool")
		}
	}
}

func BenchmarkGenerality(b *testing.B) {
	bud := experiment.Budget{Warmup: 10_000, Detail: 60_000}
	for i := 0; i < b.N; i++ {
		r := experiment.Generality(experiment.Serial(), bud)
		if len(r.Rows) != 14 {
			b.Fatal("bad generality rows")
		}
	}
}

// --- Microbenchmarks -------------------------------------------------

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Instructions simulated per second on a representative workload.
	w := workload.MustByName("621.wrf_s")
	sys, err := sim.NewSystem(sim.DefaultConfig(1), []sim.CoreSetup{{
		Trace:      w.NewReader(1),
		Prefetcher: prefetch.NewSPP(prefetch.DefaultSPPConfig()),
	}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.Run(0, uint64(b.N))
	b.ReportMetric(float64(b.N), "instructions")
}

func BenchmarkTraceGenerator(b *testing.B) {
	rd := workload.MustByName("603.bwaves_s").NewReader(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rd.Next(); !ok {
			b.Fatal("generator ended")
		}
	}
}

func BenchmarkSPPOnDemand(b *testing.B) {
	s := prefetch.NewSPP(prefetch.DefaultSPPConfig())
	emit := func(prefetch.Candidate) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%4096) << 6
		s.OnDemand(prefetch.Access{PC: 0x400, Addr: addr}, emit)
	}
}

func BenchmarkFilterDecide(b *testing.B) {
	f := ppf.New(ppf.DefaultConfig())
	in := ppf.FeatureInput{
		Addr: 0x123456780, PC: 0x400123,
		PCHist: [3]uint64{1, 2, 3}, Depth: 3, Signature: 0xABC,
		Confidence: 60, Delta: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Addr += 64
		f.Decide(&in)
	}
}

func BenchmarkFilterTrainCycle(b *testing.B) {
	f := ppf.New(ppf.DefaultConfig())
	in := ppf.FeatureInput{Addr: 0x1000000, PC: 0x400123, Confidence: 60, Delta: 1, Depth: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Addr += 64
		f.RecordIssue(&in, ppf.FillL2)
		f.OnDemand(in.Addr)
	}
}

func BenchmarkKernelFilterDecideTrain(b *testing.B) {
	kernelbench.FilterDecideTrain(b)
}

func BenchmarkKernelCacheReadHit(b *testing.B) {
	kernelbench.CacheReadHit(b)
}

func BenchmarkKernelCacheReadMiss(b *testing.B) {
	kernelbench.CacheReadMiss(b)
}

func BenchmarkKernelSPPTrigger(b *testing.B) {
	kernelbench.SPPTrigger(b)
}

func BenchmarkKernelSPPLookaheadOnly(b *testing.B) {
	kernelbench.SPPLookaheadOnly(b)
}

func BenchmarkKernelPPFDecideBatch1(b *testing.B) {
	kernelbench.PPFDecideBatch(1)(b)
}

func BenchmarkKernelPPFDecideBatch4(b *testing.B) {
	kernelbench.PPFDecideBatch(4)(b)
}

func BenchmarkKernelPPFDecideBatch16(b *testing.B) {
	kernelbench.PPFDecideBatch(16)(b)
}

func BenchmarkBranchPredictor(b *testing.B) {
	p := branch.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Update(uint64(0x400000+(i%64)*4), i%3 == 0)
	}
}

func BenchmarkTraceIO(b *testing.B) {
	insts := trace.Collect(workload.MustByName("625.x264_s").NewReader(1), 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		w, _ := trace.NewWriter(&sink)
		for _, in := range insts {
			_ = w.Write(in)
		}
		_ = w.Flush()
	}
	b.SetBytes(int64(len(insts) * 24))
}

type countingWriter struct{ n int }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}
