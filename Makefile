GO ?= go

.PHONY: check build vet test race determinism bench experiments clean

# check is the full CI gate: static checks, build, race-enabled tests,
# and the worker-count determinism proof.
check: vet build race determinism

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector. The runner tests
# are written to fail here if the worker pool ever shares state.
race:
	$(GO) test -race ./...

# determinism re-runs only the golden tests that prove -j 1 and -j 8
# produce byte-identical experiment reports.
determinism:
	$(GO) test -race -run Deterministic -count=1 ./internal/experiment/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

experiments:
	$(GO) run ./cmd/experiments -run all -quick -progress

clean:
	$(GO) clean ./...
