GO ?= go

.PHONY: check build vet test race determinism lint lint-fix bench bench-smoke serve-smoke serve-bench sweep-smoke sweep-bench fuzz-smoke profile experiments clean

# check is the full CI gate: static checks, build, the full test suite,
# the focused race pass, and the worker-count determinism proof.
check: vet lint build test race determinism

# lint runs the repo's own analyzer suite (ppflint: determinism,
# saturation, hwbudget, counterwiring, sentinel, snapshot, guardedby,
# wireproto, hotpath, errtyped — see EXPERIMENTS.md), then golangci-lint
# and govulncheck when those binaries are installed (CI installs them;
# the dev container may not have network access, so they are gated
# rather than required here).
lint:
	$(GO) run ./cmd/ppflint ./...
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

# lint-fix formats the tree and applies ppflint's suggested fixes
# (e.g. rewriting raw weight-table arithmetic through the saturating
# clamp helpers).
lint-fix:
	gofmt -w .
	$(GO) run ./cmd/ppflint -fix ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the concurrency-bearing packages under the race detector:
# the serving pipeline (reader/worker/writer per connection over the
# striped registry), the engine sessions those pipelines drive, and the
# runner's worker pool + memo cache. These are the packages guardedby
# annotates; the race detector checks the same invariants dynamically
# that ppflint checks statically. -count=1 defeats the test cache so
# the schedules actually re-run.
race:
	$(GO) test -race -count=1 ./internal/serve/... ./internal/engine/... ./internal/runner/...

# determinism re-runs only the golden tests that prove -j 1 and -j 8
# produce byte-identical experiment reports.
determinism:
	$(GO) test -race -run Deterministic -count=1 ./internal/experiment/

# bench measures the per-access hot kernels and the end-to-end sim
# rates (per scheme, event-horizon vs legacy loop, plus the memoized
# effective rate), writing BENCH_kernel.json and BENCH_sim.json
# (schemas documented in EXPERIMENTS.md). These are the simulation
# kernel's perf trajectory across PRs; -count 3 medians out machine
# noise.
bench:
	$(GO) run ./cmd/bench -count 3 -out BENCH_kernel.json -simout BENCH_sim.json

# bench-smoke compiles and runs every micro-benchmark once — a CI guard
# that the benchmarks themselves keep working, without timing anything.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# serve-smoke runs the decision server's race-focused suite (concurrent
# client churn, slow-client shedding, the served-vs-local bit-identical
# golden) plus the engine batch golden it builds on.
serve-smoke:
	$(GO) test -race -count=1 ./internal/serve/ ./internal/engine/

# serve-bench measures serving throughput (decisions/sec at 1, 8 and 64
# concurrent streams against an in-process server) and writes
# BENCH_serve.json, the serving trajectory tracked alongside the kernel
# and sim-rate snapshots.
serve-bench:
	$(GO) run ./cmd/ppfd -loadtest -streams 1,8,64 -events 200000 -out BENCH_serve.json

# sweep-smoke runs the distributed-sweep fabric's suite under the race
# detector: the remote store round trips (corruption tolerance, tiering,
# path escapes) and the fleet goldens — byte-identical tables at 1/2/4
# workers, crash -> lease expiry -> exactly-once re-run, corrupt publish
# -> reopen.
sweep-smoke:
	$(GO) test -race -count=1 ./internal/simstore/ ./internal/sweepfab/

# sweep-bench measures distributed-sweep throughput over loopback (cold
# cells/sec at 1, 2 and 4 workers plus the warm store-replay rate) and
# writes BENCH_sweep.json, the fabric's trajectory snapshot.
sweep-bench:
	$(GO) run ./cmd/bench -sweeponly -sweepout BENCH_sweep.json

# fuzz-smoke runs each native fuzz target briefly on top of its
# committed seed corpus: the ChampSim trace decode path and the
# snapshot/result codecs. `go test -fuzz` accepts one target per
# invocation, so the targets run back to back. Longer sessions: raise
# FUZZTIME or run a single target by hand.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReader$$' -fuzztime $(FUZZTIME) ./internal/tracefile/
	$(GO) test -run '^$$' -fuzz '^FuzzAdapter$$' -fuzztime $(FUZZTIME) ./internal/tracefile/
	$(GO) test -run '^$$' -fuzz '^FuzzRestore$$' -fuzztime $(FUZZTIME) ./internal/sim/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeResult$$' -fuzztime $(FUZZTIME) ./internal/sim/

# profile captures CPU and heap profiles of a representative experiment;
# inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/experiments -run fig1 -quick -cpuprofile cpu.pprof -memprofile mem.pprof

experiments:
	$(GO) run ./cmd/experiments -run all -quick -progress

clean:
	$(GO) clean ./...
	rm -rf .simcache
